//! Fault-injecting QRMI decorator.
//!
//! [`FaultInjector`] wraps any [`QuantumResource`] and injects deterministic,
//! seeded faults at the QRMI boundary so the recovery machinery above it —
//! runtime retries, graceful degradation, daemon requeues — can be exercised
//! reproducibly. It extends the simple start-time failures of
//! [`crate::InstrumentedResource`] with the full failure surface a real
//! cloud/on-prem resource exposes:
//!
//! * **acquisition denials** — `acquire` rejected (busy device, quota),
//! * **transient task failures** — a started task reports
//!   [`TaskStatus::Failed`]; resubmission draws fresh, so retries succeed,
//! * **stuck tasks** — a started task reports [`TaskStatus::Running`]
//!   forever, exercising the caller's poll-budget/timeout path,
//! * **result-fetch errors** — `task_result` of a completed task fails
//!   transiently; the next fetch draws fresh.
//!
//! Fault pressure is configured per [`ResourceType`] via [`FaultProfile`]:
//! base per-operation rates, plus an MTBF-driven *burst* model (an outage
//! window every `mtbf_ops` operations on average, during which rates are
//! multiplied) so recovery logic sees correlated failures, not just i.i.d.
//! coin flips. Doomed tasks never reach the wrapped backend — no device
//! seconds are spent on work whose outcome is predetermined.

use crate::resource::{
    AcquisitionToken, QrmiError, QuantumResource, ResourceType, TaskId, TaskStatus,
};
use hpcqc_emulator::SampleResult;
use hpcqc_program::{DeviceSpec, ProgramIr};
use hpcqc_sync::{rank, TrackedMutex as Mutex};
use hpcqc_telemetry::FaultMetrics;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-resource-type fault pressure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Probability an `acquire` is denied.
    pub acquire_denial_rate: f64,
    /// Probability a started task later reports `Failed` (transient: the
    /// resubmitted task draws fresh).
    pub task_failure_rate: f64,
    /// Probability a started task sticks in `Running` forever.
    pub stuck_task_rate: f64,
    /// Probability a `task_result` fetch fails (transient per fetch).
    pub result_fetch_failure_rate: f64,
    /// Mean operations between fault bursts (0 disables bursts).
    pub mtbf_ops: f64,
    /// Operations a burst lasts once it starts.
    pub burst_len: u32,
    /// Rate multiplier while a burst is active (effective rates clamp to 1).
    pub burst_multiplier: f64,
}

impl FaultProfile {
    /// No injected faults.
    pub fn none() -> Self {
        FaultProfile {
            acquire_denial_rate: 0.0,
            task_failure_rate: 0.0,
            stuck_task_rate: 0.0,
            result_fetch_failure_rate: 0.0,
            mtbf_ops: 0.0,
            burst_len: 0,
            burst_multiplier: 1.0,
        }
    }

    /// A moderately unreliable resource: the acceptance profile used in the
    /// integration suite (≥20% transient task failures plus intermittent
    /// acquisition denials and result-fetch errors, no bursts).
    pub fn flaky() -> Self {
        FaultProfile {
            acquire_denial_rate: 0.2,
            task_failure_rate: 0.25,
            stuck_task_rate: 0.0,
            result_fetch_failure_rate: 0.1,
            ..FaultProfile::none()
        }
    }

    /// All probabilities in range, burst parameters sane.
    pub fn is_valid(&self) -> bool {
        let unit = |p: f64| (0.0..=1.0).contains(&p);
        unit(self.acquire_denial_rate)
            && unit(self.task_failure_rate)
            && unit(self.stuck_task_rate)
            && unit(self.result_fetch_failure_rate)
            && self.task_failure_rate + self.stuck_task_rate <= 1.0
            && self.mtbf_ops >= 0.0
            && self.mtbf_ops.is_finite()
            && self.burst_multiplier >= 0.0
            && self.burst_multiplier.is_finite()
    }

    /// The rate in effect for this operation, given burst state.
    fn effective(&self, base: f64, in_burst: bool) -> f64 {
        if in_burst {
            (base * self.burst_multiplier).min(1.0)
        } else {
            base
        }
    }
}

/// What was decided for a doomed task at start time.
#[derive(Debug, Clone)]
enum InjectedFate {
    /// Polls report `Failed(msg)`.
    FailOnPoll(String),
    /// Polls report `Running` forever.
    StuckRunning,
    /// The caller gave up and stopped it.
    Cancelled,
}

/// Burst ("weather") state: correlated fault windows.
#[derive(Debug, Default)]
struct Weather {
    burst_left: u32,
}

/// The decorator. See the module docs for the fault model.
pub struct FaultInjector {
    inner: Arc<dyn QuantumResource>,
    profile: FaultProfile,
    rng: Mutex<ChaCha8Rng>,
    weather: Mutex<Weather>,
    /// Fates of tasks that never reached the wrapped backend.
    injected: Mutex<HashMap<String, InjectedFate>>,
    injected_counter: AtomicU64,
    counts: Mutex<BTreeMap<&'static str, u64>>,
    metrics: Option<FaultMetrics>,
}

impl FaultInjector {
    /// Wrap `inner`, injecting faults per `profile`, seeded for determinism.
    pub fn new(inner: Arc<dyn QuantumResource>, profile: FaultProfile, seed: u64) -> Self {
        assert!(profile.is_valid(), "invalid fault profile: {profile:?}");
        FaultInjector {
            inner,
            profile,
            rng: Mutex::new(
                "qrmi.fault.rng",
                rank::QRMI_RNG,
                ChaCha8Rng::seed_from_u64(seed),
            ),
            weather: Mutex::new("qrmi.fault.weather", rank::QRMI_WEATHER, Weather::default()),
            injected: Mutex::new("qrmi.fault.injected", rank::QRMI_INJECTED, HashMap::new()),
            injected_counter: AtomicU64::new(0),
            counts: Mutex::new("qrmi.fault.counts", rank::QRMI_COUNTS, BTreeMap::new()),
            metrics: None,
        }
    }

    /// Wrap `inner` with the profile registered for its [`ResourceType`]
    /// (no faults when the map has no entry for it).
    pub fn per_type(
        inner: Arc<dyn QuantumResource>,
        profiles: &BTreeMap<ResourceType, FaultProfile>,
        seed: u64,
    ) -> Self {
        let profile = profiles
            .get(&inner.resource_type())
            .copied()
            .unwrap_or_else(FaultProfile::none);
        FaultInjector::new(inner, profile, seed)
    }

    /// Report injected faults through `metrics`.
    pub fn with_metrics(mut self, metrics: FaultMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The active profile.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Injected-fault counts by kind (`acquire_denied`, `task_failed`,
    /// `task_stuck`, `result_fetch`), for assertions without a registry.
    pub fn fault_counts(&self) -> BTreeMap<&'static str, u64> {
        self.counts.lock().clone()
    }

    /// Total injected faults across all kinds.
    pub fn total_faults(&self) -> u64 {
        self.counts.lock().values().sum()
    }

    /// Advance the burst process one operation; true while a burst is active.
    fn tick(&self) -> bool {
        let mut w = self.weather.lock();
        if w.burst_left > 0 {
            w.burst_left -= 1;
            return true;
        }
        if self.profile.mtbf_ops > 0.0
            && self.profile.burst_len > 0
            && self
                .rng
                .lock()
                .gen_bool((1.0 / self.profile.mtbf_ops).min(1.0))
        {
            w.burst_left = self.profile.burst_len;
            return true;
        }
        false
    }

    fn record(&self, kind: &'static str) {
        *self.counts.lock().entry(kind).or_insert(0) += 1;
        if let Some(m) = &self.metrics {
            m.fault_injected(self.inner.resource_id(), kind);
        }
    }
}

impl QuantumResource for FaultInjector {
    fn resource_id(&self) -> &str {
        self.inner.resource_id()
    }

    fn resource_type(&self) -> ResourceType {
        self.inner.resource_type()
    }

    fn acquire(&self) -> Result<AcquisitionToken, QrmiError> {
        let in_burst = self.tick();
        let p = self
            .profile
            .effective(self.profile.acquire_denial_rate, in_burst);
        if p > 0.0 && self.rng.lock().gen::<f64>() < p {
            self.record("acquire_denied");
            return Err(QrmiError::AcquisitionDenied(
                "injected fault: device busy".into(),
            ));
        }
        self.inner.acquire()
    }

    fn release(&self, token: &AcquisitionToken) -> Result<(), QrmiError> {
        self.inner.release(token)
    }

    fn target(&self) -> Result<DeviceSpec, QrmiError> {
        self.inner.target()
    }

    fn task_start(&self, token: &AcquisitionToken, ir: &ProgramIr) -> Result<TaskId, QrmiError> {
        let in_burst = self.tick();
        let p_fail = self
            .profile
            .effective(self.profile.task_failure_rate, in_burst);
        let p_stuck = self
            .profile
            .effective(self.profile.stuck_task_rate, in_burst);
        let fate = {
            let draw = self.rng.lock().gen::<f64>();
            if draw < p_fail {
                Some(InjectedFate::FailOnPoll(
                    "injected fault: task lost by backend".into(),
                ))
            } else if draw < p_fail + p_stuck {
                Some(InjectedFate::StuckRunning)
            } else {
                None
            }
        };
        match fate {
            None => self.inner.task_start(token, ir),
            Some(f) => {
                // doomed: never reaches the backend, no device time wasted
                self.record(match f {
                    InjectedFate::FailOnPoll(_) => "task_failed",
                    _ => "task_stuck",
                });
                let id = format!(
                    "injected-{}",
                    self.injected_counter.fetch_add(1, Ordering::Relaxed)
                );
                self.injected.lock().insert(id.clone(), f);
                Ok(TaskId(id))
            }
        }
    }

    fn task_status(&self, task: &TaskId) -> Result<TaskStatus, QrmiError> {
        if let Some(fate) = self.injected.lock().get(&task.0) {
            return Ok(match fate {
                InjectedFate::FailOnPoll(m) => TaskStatus::Failed(m.clone()),
                InjectedFate::StuckRunning => TaskStatus::Running,
                InjectedFate::Cancelled => TaskStatus::Cancelled,
            });
        }
        self.inner.task_status(task)
    }

    fn task_stop(&self, task: &TaskId) -> Result<(), QrmiError> {
        let mut injected = self.injected.lock();
        if let Some(fate) = injected.get_mut(&task.0) {
            *fate = InjectedFate::Cancelled;
            return Ok(());
        }
        drop(injected);
        self.inner.task_stop(task)
    }

    fn task_result(&self, task: &TaskId) -> Result<SampleResult, QrmiError> {
        if let Some(fate) = self.injected.lock().get(&task.0) {
            return Err(match fate {
                InjectedFate::FailOnPoll(m) => QrmiError::Backend(m.clone()),
                _ => QrmiError::InvalidState("task not completed".into()),
            });
        }
        let in_burst = self.tick();
        let p = self
            .profile
            .effective(self.profile.result_fetch_failure_rate, in_burst);
        if p > 0.0 && self.rng.lock().gen::<f64>() < p {
            self.record("result_fetch");
            return Err(QrmiError::Backend(
                "injected fault: result fetch failed".into(),
            ));
        }
        self.inner.task_result(task)
    }

    fn metadata(&self) -> BTreeMap<String, String> {
        let mut m = self.inner.metadata();
        m.insert("fault_injector".into(), "true".into());
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::LocalEmulatorResource;
    use crate::resource::run_to_completion;
    use hpcqc_emulator::SvBackend;
    use hpcqc_program::{Pulse, Register, SequenceBuilder};

    fn ir(shots: u32) -> ProgramIr {
        let reg = Register::linear(2, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(0.2, 4.0, 0.0, 0.0).unwrap());
        ProgramIr::new(b.build().unwrap(), shots, "fault-test")
    }

    fn wrapped(profile: FaultProfile, seed: u64) -> FaultInjector {
        let inner = Arc::new(LocalEmulatorResource::new(
            "emu",
            Arc::new(SvBackend::default()),
            1,
        ));
        FaultInjector::new(inner, profile, seed)
    }

    #[test]
    fn no_faults_is_transparent() {
        let r = wrapped(FaultProfile::none(), 1);
        let tok = r.acquire().unwrap();
        let res = run_to_completion(&r, &tok, &ir(30), 10).unwrap();
        assert_eq!(res.shots, 30);
        r.release(&tok).unwrap();
        assert_eq!(r.total_faults(), 0);
        assert_eq!(r.metadata()["fault_injector"], "true");
    }

    #[test]
    fn transient_task_failures_fail_then_succeed_on_retry() {
        let profile = FaultProfile {
            task_failure_rate: 0.5,
            ..FaultProfile::none()
        };
        let r = wrapped(profile, 3);
        let tok = r.acquire().unwrap();
        let mut failed = 0;
        let mut completed = 0;
        for _ in 0..100 {
            let t = r.task_start(&tok, &ir(2)).unwrap();
            match r.task_status(&t).unwrap() {
                TaskStatus::Failed(m) => {
                    assert!(m.contains("injected"));
                    assert!(matches!(r.task_result(&t), Err(QrmiError::Backend(_))));
                    failed += 1;
                }
                TaskStatus::Completed => {
                    assert_eq!(r.task_result(&t).unwrap().shots, 2);
                    completed += 1;
                }
                other => panic!("unexpected status {other:?}"),
            }
        }
        assert!(
            failed > 20 && completed > 20,
            "failed={failed} completed={completed}"
        );
        assert_eq!(r.fault_counts()["task_failed"], failed);
    }

    #[test]
    fn stuck_tasks_report_running_forever_and_can_be_stopped() {
        let profile = FaultProfile {
            stuck_task_rate: 1.0,
            ..FaultProfile::none()
        };
        let r = wrapped(profile, 4);
        let tok = r.acquire().unwrap();
        let t = r.task_start(&tok, &ir(2)).unwrap();
        for _ in 0..50 {
            assert_eq!(r.task_status(&t).unwrap(), TaskStatus::Running);
        }
        assert!(
            matches!(
                run_to_completion(&r, &tok, &ir(2), 5),
                Err(QrmiError::InvalidState(_))
            ),
            "poll budget must expire on a stuck task"
        );
        r.task_stop(&t).unwrap();
        assert_eq!(r.task_status(&t).unwrap(), TaskStatus::Cancelled);
        assert_eq!(r.fault_counts()["task_stuck"], 2);
    }

    #[test]
    fn result_fetch_errors_are_transient() {
        let profile = FaultProfile {
            result_fetch_failure_rate: 0.5,
            ..FaultProfile::none()
        };
        let r = wrapped(profile, 5);
        let tok = r.acquire().unwrap();
        let t = r.task_start(&tok, &ir(2)).unwrap();
        assert_eq!(r.task_status(&t).unwrap(), TaskStatus::Completed);
        // keep fetching: transient failures eventually give way to the result
        let mut fetch_errors = 0;
        let res = loop {
            match r.task_result(&t) {
                Ok(res) => break res,
                Err(QrmiError::Backend(m)) => {
                    assert!(m.contains("result fetch"));
                    fetch_errors += 1;
                    assert!(fetch_errors < 100, "fetch never succeeded");
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        };
        assert_eq!(res.shots, 2);
    }

    #[test]
    fn acquisition_denials_seeded_and_deterministic() {
        let profile = FaultProfile {
            acquire_denial_rate: 0.4,
            ..FaultProfile::none()
        };
        let denials = |seed: u64| {
            let r = wrapped(profile, seed);
            (0..100).filter(|_| r.acquire().is_err()).count()
        };
        let a = denials(9);
        assert!(a > 10 && a < 80, "denials {a}");
        assert_eq!(a, denials(9), "same seed, same faults");
        assert_ne!(denials(9), denials(10), "different seed, different stream");
    }

    #[test]
    fn bursts_concentrate_failures() {
        // base rate 0 — faults can only fire inside a burst window
        let profile = FaultProfile {
            task_failure_rate: 0.01,
            mtbf_ops: 20.0,
            burst_len: 5,
            burst_multiplier: 100.0,
            ..FaultProfile::none()
        };
        let r = wrapped(profile, 6);
        let tok = r.acquire().unwrap();
        let outcomes: Vec<bool> = (0..300)
            .map(|_| {
                let t = r.task_start(&tok, &ir(1)).unwrap();
                matches!(r.task_status(&t), Ok(TaskStatus::Failed(_)))
            })
            .collect();
        let failures = outcomes.iter().filter(|&&f| f).count();
        assert!(
            failures > 10,
            "bursts should produce failures, got {failures}"
        );
        // correlation: a failure is far more likely right after a failure
        // than unconditionally (burst windows cluster them)
        let pairs = outcomes.windows(2).filter(|w| w[0]).count();
        let after_failure = outcomes.windows(2).filter(|w| w[0] && w[1]).count();
        let p_cond = after_failure as f64 / pairs.max(1) as f64;
        let p_base = failures as f64 / outcomes.len() as f64;
        assert!(
            p_cond > 2.0 * p_base,
            "expected clustering: P(fail|fail)={p_cond:.2} vs P(fail)={p_base:.2}"
        );
    }

    #[test]
    fn per_type_profile_selection() {
        let mut profiles = BTreeMap::new();
        profiles.insert(
            ResourceType::QpuCloud,
            FaultProfile {
                acquire_denial_rate: 1.0,
                ..FaultProfile::none()
            },
        );
        // local emulator has no entry → no faults
        let inner = Arc::new(LocalEmulatorResource::new(
            "emu",
            Arc::new(SvBackend::default()),
            1,
        ));
        let r = FaultInjector::per_type(inner, &profiles, 1);
        assert_eq!(r.profile(), &FaultProfile::none());
        assert!(r.acquire().is_ok());
    }

    #[test]
    fn metrics_reported_when_attached() {
        let metrics = FaultMetrics::default();
        let profile = FaultProfile {
            acquire_denial_rate: 1.0,
            ..FaultProfile::none()
        };
        let inner = Arc::new(LocalEmulatorResource::new(
            "emu",
            Arc::new(SvBackend::default()),
            1,
        ));
        let r = FaultInjector::new(inner, profile, 1).with_metrics(metrics.clone());
        assert!(r.acquire().is_err());
        assert!(metrics
            .registry()
            .expose()
            .contains("qrmi_faults_injected_total{kind=\"acquire_denied\",resource=\"emu\"} 1"));
    }

    #[test]
    #[should_panic(expected = "invalid fault profile")]
    fn invalid_profile_rejected() {
        wrapped(
            FaultProfile {
                task_failure_rate: 0.7,
                stuck_task_rate: 0.7,
                ..FaultProfile::none()
            },
            1,
        );
    }
}
