//! # hpcqc-qrmi — the Quantum Resource Management Interface
//!
//! Rust implementation of the vendor-neutral QRMI (paper ref [23]): a single
//! [`QuantumResource`] trait with acquire/release leasing and a task
//! lifecycle, implemented by the four resource flavors of paper §3.2 —
//! on-prem QPU, cloud QPU, cloud emulator, local emulator — plus the
//! environment-variable configuration scheme (§3.4) and a resource registry
//! that resolves the runtime's `--qpu=<resource>` switch.

pub mod backends;
pub mod config;
pub mod fault;
pub mod instrument;
pub mod resource;

pub use backends::{CloudEngine, CloudResource, LocalEmulatorResource, QpuDirectResource};
pub use config::{ConfigError, QrmiConfig, ResourceConfig, ResourceFactory, ResourceRegistry};
pub use fault::{FaultInjector, FaultProfile};
pub use instrument::{FaultConfig, InstrumentedResource, ProfileEntry, TimingModel};
pub use resource::{
    run_to_completion, AcquisitionToken, QrmiError, QuantumResource, ResourceType, TaskId,
    TaskStatus,
};
