//! Property tests for the analyzer's two core invariants: clean programs
//! produce zero Errors, and Error diagnostics are in exact (multiset) parity
//! with `program::validate` + `validate_shots`.

use hpcqc_analysis::{analyze, Severity};
use hpcqc_program::validate::validate_shots;
use hpcqc_program::{validate, DeviceSpec, ProgramIr, Pulse, Register, SequenceBuilder};
use proptest::prelude::*;

/// A program guaranteed to fit the production envelope: ≤ 9 atoms at
/// 5.5–7 µm spacing (well inside the 35 µm field of view), Ω ≤ 12 rad/µs,
/// |δ| ≤ 30, total duration ≤ 6 µs, 1–2000 shots.
fn clean_program() -> impl Strategy<Value = ProgramIr> {
    (
        1usize..10,
        5.5f64..7.0,
        0.0f64..12.0,
        -30.0f64..30.0,
        0.05f64..2.9,
        1u32..2001,
        1usize..3,
    )
        .prop_map(|(n, spacing, omega, delta, duration, shots, pulses)| {
            let reg = Register::linear(n, spacing).unwrap();
            let mut b = SequenceBuilder::new(reg);
            for _ in 0..pulses {
                b.add_global_pulse(Pulse::constant(duration, omega, delta, 0.0).unwrap());
            }
            ProgramIr::new(b.build().unwrap(), shots, "proptest")
        })
}

/// A program that may or may not violate the production spec in any
/// combination of ways (geometry, drive limits, duration, channel, shots).
fn wild_program() -> impl Strategy<Value = ProgramIr> {
    (
        1usize..30,
        2.0f64..10.0,
        -2.0f64..20.0,
        -60.0f64..60.0,
        0.05f64..8.0,
        0u32..6000,
        prop_oneof![Just("rydberg_global"), Just("raman_local")],
    )
        .prop_map(|(n, spacing, omega, delta, duration, shots, channel)| {
            let reg = Register::linear(n, spacing).unwrap();
            let mut b = SequenceBuilder::new(reg);
            b.add_pulse(
                channel,
                Pulse::constant(duration, omega, delta, 0.0).unwrap(),
            );
            ProgramIr::new(b.build().unwrap(), shots, "proptest")
        })
}

/// Sorted multiset of `(kind, message)` from the validator.
fn validator_findings(ir: &ProgramIr, spec: &DeviceSpec) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = validate(&ir.sequence, spec)
        .into_iter()
        .chain(validate_shots(ir.shots, spec))
        .map(|x| (format!("{:?}", x.kind), x.message))
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn clean_programs_have_zero_errors(ir in clean_program()) {
        let spec = DeviceSpec::analog_production();
        let report = analyze(&ir, Some(&spec));
        prop_assert!(!report.has_errors(), "clean program produced errors:\n{}", report.render());
    }

    #[test]
    fn error_diagnostics_match_validator_exactly(ir in wild_program()) {
        let spec = DeviceSpec::analog_production();
        let expected = validator_findings(&ir, &spec);
        let report = analyze(&ir, Some(&spec));
        let mut got: Vec<(String, String)> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| {
                let kind = d.violation.clone().expect("every Error carries its violation kind");
                (format!("{kind:?}"), d.message.clone())
            })
            .collect();
        got.sort();
        prop_assert_eq!(expected, got);
    }

    #[test]
    fn error_violations_reconstruct_the_validator_output(ir in wild_program()) {
        let spec = DeviceSpec::analog_production();
        let report = analyze(&ir, Some(&spec));
        let mut rebuilt: Vec<(String, String)> = report
            .error_violations()
            .into_iter()
            .map(|v| (format!("{:?}", v.kind), v.message))
            .collect();
        rebuilt.sort();
        prop_assert_eq!(validator_findings(&ir, &spec), rebuilt);
    }

    #[test]
    fn reports_serialize_for_tooling(ir in wild_program()) {
        let spec = DeviceSpec::analog_production();
        let report = analyze(&ir, Some(&spec));
        let back: hpcqc_analysis::AnalysisReport =
            serde_json::from_str(&report.to_json()).unwrap();
        prop_assert_eq!(report, back);
    }
}
