//! Structured diagnostics with stable lint codes.
//!
//! Every finding of the analyzer is a [`Diagnostic`]: a stable [`LintCode`]
//! (never renumbered once shipped — tooling keys on them), a [`Severity`], a
//! human-readable message and an optional [`Span`] pointing at the offending
//! channel/pulse. Diagnostics serialize to JSON for IDEs, CI gates and the
//! middleware's rejection responses alike.

use hpcqc_program::ViolationKind;
use serde::value::Value;
use serde::{DeError, Deserialize, Serialize};

/// How bad a finding is.
///
/// Only `Error` diagnostics block execution (runtime pre-flight and daemon
/// submission both reject on them); `Warning`s are surfaced in job records,
/// `Hint`s are informational.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// The program cannot run as written (hard device-constraint violation).
    Error,
    /// The program runs but is likely wrong, fragile or wasteful.
    Warning,
    /// Informational: estimates, inferred facts, style.
    Hint,
}

impl Severity {
    /// Stable lowercase string form (used as a metric label).
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Hint => "hint",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for Severity {
    fn to_value(&self) -> Value {
        Value::String(self.as_str().to_string())
    }
}

impl Deserialize for Severity {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_str() {
            Some("error") => Ok(Severity::Error),
            Some("warning") => Ok(Severity::Warning),
            Some("hint") => Ok(Severity::Hint),
            _ => Err(DeError::custom(format!("unknown severity {v:?}"))),
        }
    }
}

/// Where in the program a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Channel the offending pulse plays on.
    pub channel: String,
    /// Index into `sequence.pulses`.
    pub pulse: usize,
}

/// The stable lint-code registry. Codes are grouped by pass in blocks of 100:
/// `HQ01xx` hard constraints, `HQ02xx` waveform quality, `HQ03xx` drift
/// margins, `HQ04xx` dead code, `HQ05xx` budget, `HQ06xx` pattern inference,
/// `HQ07xx` validation freshness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintCode {
    /// HQ0101: register exceeds the device qubit count.
    TooManyQubits,
    /// HQ0102: two atoms closer than the minimum trap distance.
    AtomsTooClose,
    /// HQ0103: an atom outside the optical field of view.
    RegisterTooLarge,
    /// HQ0104: sequence exceeds the maximum duration.
    SequenceTooLong,
    /// HQ0105: pulse on a channel the device does not expose.
    UnknownChannel,
    /// HQ0106: Rabi frequency above the channel maximum (or negative).
    AmplitudeOutOfRange,
    /// HQ0107: detuning exits the calibrated range.
    DetuningOutOfRange,
    /// HQ0108: shot count outside `[min_shots, max_shots]`.
    ShotsOutOfRange,
    /// HQ0201: amplitude changes faster than the configured slew limit.
    ExcessiveSlewRate,
    /// HQ0202: instantaneous amplitude jump at a pulse boundary.
    AmplitudeDiscontinuity,
    /// HQ0203: detuning/phase programmed under identically-zero amplitude.
    DeadDrive,
    /// HQ0301: peak amplitude within the drift margin of the spec limit.
    AmplitudeNearLimit,
    /// HQ0302: detuning within the drift margin of the spec limit.
    DetuningNearLimit,
    /// HQ0303: duration within the drift margin of the spec limit.
    DurationNearLimit,
    /// HQ0401: no pulse ever drives the atoms.
    NoAtomsAddressed,
    /// HQ0402: a channel carries only zero pulses.
    UnusedChannel,
    /// HQ0403: zero-drive pulses after the last real drive.
    TrailingDeadTime,
    /// HQ0501: estimated device-time budget for the submission.
    BudgetEstimate,
    /// HQ0502: estimated wall-clock exceeds the configured budget.
    ExcessiveWallclock,
    /// HQ0601: statically inferred Table-1 workload pattern.
    InferredPattern,
    /// HQ0602: pattern not inferable (no declared classical estimate).
    UnknownPattern,
    /// HQ0701: validated against a stale device-spec revision.
    StaleValidation,
    /// HQ0702: never validated against any device spec.
    NeverValidated,
}

impl LintCode {
    /// The stable wire form, e.g. `"HQ0101"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            LintCode::TooManyQubits => "HQ0101",
            LintCode::AtomsTooClose => "HQ0102",
            LintCode::RegisterTooLarge => "HQ0103",
            LintCode::SequenceTooLong => "HQ0104",
            LintCode::UnknownChannel => "HQ0105",
            LintCode::AmplitudeOutOfRange => "HQ0106",
            LintCode::DetuningOutOfRange => "HQ0107",
            LintCode::ShotsOutOfRange => "HQ0108",
            LintCode::ExcessiveSlewRate => "HQ0201",
            LintCode::AmplitudeDiscontinuity => "HQ0202",
            LintCode::DeadDrive => "HQ0203",
            LintCode::AmplitudeNearLimit => "HQ0301",
            LintCode::DetuningNearLimit => "HQ0302",
            LintCode::DurationNearLimit => "HQ0303",
            LintCode::NoAtomsAddressed => "HQ0401",
            LintCode::UnusedChannel => "HQ0402",
            LintCode::TrailingDeadTime => "HQ0403",
            LintCode::BudgetEstimate => "HQ0501",
            LintCode::ExcessiveWallclock => "HQ0502",
            LintCode::InferredPattern => "HQ0601",
            LintCode::UnknownPattern => "HQ0602",
            LintCode::StaleValidation => "HQ0701",
            LintCode::NeverValidated => "HQ0702",
        }
    }

    /// One-line description for the registry table.
    pub fn description(&self) -> &'static str {
        match self {
            LintCode::TooManyQubits => "register exceeds device qubit count",
            LintCode::AtomsTooClose => "atoms closer than the minimum trap distance",
            LintCode::RegisterTooLarge => "atom outside the optical field of view",
            LintCode::SequenceTooLong => "sequence exceeds the maximum duration",
            LintCode::UnknownChannel => "pulse on a channel the device does not expose",
            LintCode::AmplitudeOutOfRange => "Rabi frequency out of channel range",
            LintCode::DetuningOutOfRange => "detuning out of calibrated range",
            LintCode::ShotsOutOfRange => "shot count outside the accepted range",
            LintCode::ExcessiveSlewRate => "amplitude slew rate above the configured limit",
            LintCode::AmplitudeDiscontinuity => "instantaneous amplitude jump at a pulse boundary",
            LintCode::DeadDrive => "detuning/phase programmed under zero amplitude",
            LintCode::AmplitudeNearLimit => "peak amplitude within drift margin of the spec limit",
            LintCode::DetuningNearLimit => "detuning within drift margin of the spec limit",
            LintCode::DurationNearLimit => "duration within drift margin of the spec limit",
            LintCode::NoAtomsAddressed => "no pulse ever drives the atoms",
            LintCode::UnusedChannel => "channel carries only zero pulses",
            LintCode::TrailingDeadTime => "zero-drive pulses after the last real drive",
            LintCode::BudgetEstimate => "estimated device-time budget",
            LintCode::ExcessiveWallclock => "estimated wall-clock exceeds the budget",
            LintCode::InferredPattern => "statically inferred workload pattern",
            LintCode::UnknownPattern => "pattern not inferable without a classical estimate",
            LintCode::StaleValidation => "validated against a stale device-spec revision",
            LintCode::NeverValidated => "never validated against any device spec",
        }
    }

    /// The Error-level lint covering a hard [`ViolationKind`]. Exhaustive on
    /// purpose: adding a `ViolationKind` without a lint breaks the build,
    /// which is the compile-time half of the parity invariant (the runtime
    /// half is the property test in `tests/properties.rs`).
    pub fn for_violation(kind: &ViolationKind) -> LintCode {
        match kind {
            ViolationKind::TooManyQubits => LintCode::TooManyQubits,
            ViolationKind::AtomsTooClose => LintCode::AtomsTooClose,
            ViolationKind::RegisterTooLarge => LintCode::RegisterTooLarge,
            ViolationKind::SequenceTooLong => LintCode::SequenceTooLong,
            ViolationKind::UnknownChannel => LintCode::UnknownChannel,
            ViolationKind::AmplitudeOutOfRange => LintCode::AmplitudeOutOfRange,
            ViolationKind::DetuningOutOfRange => LintCode::DetuningOutOfRange,
            ViolationKind::ShotsOutOfRange => LintCode::ShotsOutOfRange,
        }
    }

    /// Parse the wire form back into a code.
    pub fn parse(s: &str) -> Option<LintCode> {
        ALL_LINTS.iter().find(|c| c.as_str() == s).copied()
    }
}

impl std::fmt::Display for LintCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for LintCode {
    fn to_value(&self) -> Value {
        Value::String(self.as_str().to_string())
    }
}

impl Deserialize for LintCode {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .and_then(LintCode::parse)
            .ok_or_else(|| DeError::custom(format!("unknown lint code {v:?}")))
    }
}

/// Every lint code the analyzer can emit, in registry order.
pub const ALL_LINTS: &[LintCode] = &[
    LintCode::TooManyQubits,
    LintCode::AtomsTooClose,
    LintCode::RegisterTooLarge,
    LintCode::SequenceTooLong,
    LintCode::UnknownChannel,
    LintCode::AmplitudeOutOfRange,
    LintCode::DetuningOutOfRange,
    LintCode::ShotsOutOfRange,
    LintCode::ExcessiveSlewRate,
    LintCode::AmplitudeDiscontinuity,
    LintCode::DeadDrive,
    LintCode::AmplitudeNearLimit,
    LintCode::DetuningNearLimit,
    LintCode::DurationNearLimit,
    LintCode::NoAtomsAddressed,
    LintCode::UnusedChannel,
    LintCode::TrailingDeadTime,
    LintCode::BudgetEstimate,
    LintCode::ExcessiveWallclock,
    LintCode::InferredPattern,
    LintCode::UnknownPattern,
    LintCode::StaleValidation,
    LintCode::NeverValidated,
];

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable lint code.
    pub code: LintCode,
    /// Severity assigned by the emitting pass.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// The offending channel/pulse, when one can be pinpointed.
    pub span: Option<Span>,
    /// For hard-constraint lints: the `program::validate` violation this
    /// diagnostic mirrors (lets callers rebuild a `Violation` losslessly).
    pub violation: Option<ViolationKind>,
}

impl Diagnostic {
    /// An Error-level diagnostic.
    pub fn error(code: LintCode, message: impl Into<String>) -> Self {
        Diagnostic::new(code, Severity::Error, message)
    }

    /// A Warning-level diagnostic.
    pub fn warning(code: LintCode, message: impl Into<String>) -> Self {
        Diagnostic::new(code, Severity::Warning, message)
    }

    /// A Hint-level diagnostic.
    pub fn hint(code: LintCode, message: impl Into<String>) -> Self {
        Diagnostic::new(code, Severity::Hint, message)
    }

    fn new(code: LintCode, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            span: None,
            violation: None,
        }
    }

    /// Attach a channel/pulse span.
    pub fn with_span(mut self, channel: impl Into<String>, pulse: usize) -> Self {
        self.span = Some(Span {
            channel: channel.into(),
            pulse,
        });
        self
    }

    /// Attach the source hard-constraint violation kind.
    pub fn with_violation(mut self, kind: ViolationKind) -> Self {
        self.violation = Some(kind);
        self
    }

    /// One-line human rendering: `HQ0106 error: ... (rydberg_global #2)`.
    pub fn render(&self) -> String {
        match &self.span {
            Some(s) => format!(
                "{} {}: {} ({} #{})",
                self.code, self.severity, self.message, s.channel, s.pulse
            ),
            None => format!("{} {}: {}", self.code, self.severity, self.message),
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for code in ALL_LINTS {
            assert!(seen.insert(code.as_str()), "duplicate code {code}");
            assert!(code.as_str().starts_with("HQ"));
            assert_eq!(code.as_str().len(), 6);
            assert_eq!(
                LintCode::parse(code.as_str()),
                Some(*code),
                "parse roundtrip"
            );
        }
        assert_eq!(LintCode::parse("HQ9999"), None);
    }

    #[test]
    fn every_violation_kind_has_an_error_lint() {
        use ViolationKind::*;
        for kind in [
            TooManyQubits,
            AtomsTooClose,
            RegisterTooLarge,
            SequenceTooLong,
            UnknownChannel,
            AmplitudeOutOfRange,
            DetuningOutOfRange,
            ShotsOutOfRange,
        ] {
            let code = LintCode::for_violation(&kind);
            assert!(
                code.as_str().starts_with("HQ01"),
                "{kind:?} maps into the HQ01xx block"
            );
        }
    }

    #[test]
    fn diagnostic_serde_roundtrip() {
        let d = Diagnostic::error(LintCode::AmplitudeOutOfRange, "too strong")
            .with_span("rydberg_global", 2)
            .with_violation(ViolationKind::AmplitudeOutOfRange);
        let json = serde_json::to_string(&d).unwrap();
        assert!(json.contains("\"HQ0106\""), "{json}");
        assert!(json.contains("\"error\""), "{json}");
        let back: Diagnostic = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn render_includes_span() {
        let d = Diagnostic::warning(LintCode::DeadDrive, "zero drive").with_span("ch", 1);
        assert_eq!(d.render(), "HQ0203 warning: zero drive (ch #1)");
        assert_eq!(format!("{d}"), d.render());
    }

    #[test]
    fn severity_orders_errors_first() {
        assert!(Severity::Error < Severity::Warning);
        assert!(Severity::Warning < Severity::Hint);
    }
}
