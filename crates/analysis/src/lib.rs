//! # hpcqc-analysis — static analysis over the program IR
//!
//! A multi-pass analyzer turning a [`ProgramIr`](hpcqc_program::ProgramIr)
//! (plus, optionally, the live [`DeviceSpec`](hpcqc_program::DeviceSpec))
//! into structured [`Diagnostic`]s with stable `HQxxxx` lint codes. It is the
//! "reject or annotate cheaply, before the QPU" layer the ROADMAP calls for:
//! both submission paths run it — `core::Runtime` as a client-side pre-flight
//! and the middleware daemon server-side.
//!
//! The standard pipeline ([`Analyzer::standard`]) runs seven passes:
//!
//! | Pass | Codes | Findings |
//! |------|-------|----------|
//! | hard-constraints | HQ0101–HQ0108 | Error-level parity with `program::validate` |
//! | waveform-quality | HQ0201–HQ0203 | slew rate, discontinuities, dead drive |
//! | drift-margins | HQ0301–HQ0303 | valid today, no headroom for recalibration |
//! | dead-code | HQ0401–HQ0403 | undriven atoms, zero channels, trailing dead time |
//! | budget | HQ0501–HQ0502 | shot/duration cost estimation |
//! | pattern-inference | HQ0601–HQ0602 | Table-1 `PatternHint` from QPU duty |
//! | validation-freshness | HQ0701–HQ0702 | stale / missing client validation |
//!
//! Two invariants the test suite enforces:
//!
//! 1. **Parity** — the analyzer emits an Error-level diagnostic *iff*
//!    `program::validate`/`validate_shots` emits a violation, with the same
//!    kind and message. Error diagnostics are therefore safe to convert back
//!    into `Violation`s ([`AnalysisReport::error_violations`]).
//! 2. **Clean programs are clean** — programs generated inside the spec
//!    envelope produce zero Errors.

pub mod context;
pub mod diagnostic;
pub mod pass;
pub mod passes;

pub use context::{AnalysisContext, AnalysisReport, AnalyzerConfig, Facts};
pub use diagnostic::{Diagnostic, LintCode, Severity, Span, ALL_LINTS};
pub use pass::{analyze, AnalysisPass, Analyzer};
pub use passes::infer_from_durations;
