//! Shared state the passes read and write.

use crate::diagnostic::{Diagnostic, Severity};
use hpcqc_program::{DeviceSpec, ProgramIr, Violation};
use hpcqc_scheduler::PatternHint;
use serde::{Deserialize, Serialize};

/// Tunable thresholds for the advisory passes. Hard-constraint checks take
/// their limits from the [`DeviceSpec`], never from here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyzerConfig {
    /// Fraction of a spec limit treated as "too close for comfort" under
    /// calibration drift: warn when a value lands in the top
    /// `drift_margin_frac` of the allowed range.
    pub drift_margin_frac: f64,
    /// Maximum amplitude slew rate in rad/µs per µs before HQ0201 fires.
    pub max_slew_rate: f64,
    /// Instantaneous amplitude step (rad/µs) at a pulse boundary before
    /// HQ0202 fires. Defaults to 2π so ordinary square turn-ons stay quiet.
    pub discontinuity_threshold: f64,
    /// Estimated wall-clock budget (s) before HQ0502 fires.
    pub max_wallclock_secs: f64,
    /// QPU duty at or above which a program is inferred QC-heavy.
    pub qc_heavy_duty: f64,
    /// QPU duty at or below which a program is inferred CC-heavy.
    pub cc_heavy_duty: f64,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            drift_margin_frac: 0.1,
            max_slew_rate: 500.0,
            discontinuity_threshold: 2.0 * std::f64::consts::PI,
            max_wallclock_secs: 3600.0,
            qc_heavy_duty: 0.7,
            cc_heavy_duty: 0.3,
        }
    }
}

/// Facts accumulated by the passes; later passes may read what earlier passes
/// derived (budget → pattern inference), and the final report exposes them to
/// callers (the daemon uses `inferred_hint` to cross-check the user hint).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Facts {
    /// Estimated seconds of actual QPU drive time (shots × duration).
    pub est_qpu_secs: f64,
    /// Estimated wall-clock seconds including the device shot rate.
    pub est_wallclock_secs: f64,
    /// QPU duty = quantum / (quantum + classical), when inferable.
    pub qpu_duty: Option<f64>,
    /// Declared classical-phase estimate from the IR, if any.
    pub classical_secs: Option<f64>,
    /// The Table-1 pattern inferred from the duty, if inferable.
    pub inferred_hint: Option<PatternHint>,
}

impl Default for Facts {
    fn default() -> Self {
        Facts {
            est_qpu_secs: 0.0,
            est_wallclock_secs: 0.0,
            qpu_duty: None,
            classical_secs: None,
            inferred_hint: None,
        }
    }
}

/// Everything a pass sees: the program, the (optional) device spec it targets,
/// the analyzer configuration, and the facts/diagnostics accumulated so far.
pub struct AnalysisContext<'a> {
    /// The program under analysis.
    pub ir: &'a ProgramIr,
    /// Current device spec, when the caller has one. Spec-dependent passes
    /// (hard constraints, drift margins, staleness) no-op without it.
    pub spec: Option<&'a DeviceSpec>,
    /// Thresholds for the advisory passes.
    pub cfg: &'a AnalyzerConfig,
    /// Facts derived so far.
    pub facts: Facts,
    diagnostics: Vec<Diagnostic>,
}

impl<'a> AnalysisContext<'a> {
    pub fn new(ir: &'a ProgramIr, spec: Option<&'a DeviceSpec>, cfg: &'a AnalyzerConfig) -> Self {
        AnalysisContext {
            ir,
            spec,
            cfg,
            facts: Facts::default(),
            diagnostics: Vec::new(),
        }
    }

    /// Record a finding.
    pub fn emit(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Close the context into a report.
    pub fn finish(self) -> AnalysisReport {
        AnalysisReport {
            diagnostics: self.diagnostics,
            facts: self.facts,
        }
    }
}

/// The analyzer's output: every diagnostic plus the derived facts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
    /// Derived program facts (budget estimates, inferred pattern, ...).
    pub facts: Facts,
}

impl AnalysisReport {
    /// True when at least one Error-level diagnostic is present.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// All Error-level diagnostics.
    pub fn errors(&self) -> Vec<&Diagnostic> {
        self.by_severity(Severity::Error)
    }

    /// All Warning-level diagnostics.
    pub fn warnings(&self) -> Vec<&Diagnostic> {
        self.by_severity(Severity::Warning)
    }

    fn by_severity(&self, s: Severity) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == s)
            .collect()
    }

    /// Rebuild the `program::validate`-shaped violations behind the Error
    /// diagnostics, so pre-flight callers can fail with the same
    /// `Validation(Vec<Violation>)` error they produce today.
    pub fn error_violations(&self) -> Vec<Violation> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .filter_map(|d| {
                d.violation.clone().map(|kind| Violation {
                    kind,
                    message: d.message.clone(),
                })
            })
            .collect()
    }

    /// Serialize the report to JSON for tooling.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serializes")
    }

    /// Multi-line human rendering, one diagnostic per line, errors first.
    pub fn render(&self) -> String {
        let mut sorted: Vec<&Diagnostic> = self.diagnostics.iter().collect();
        sorted.sort_by_key(|d| d.severity);
        sorted
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::LintCode;
    use hpcqc_program::ViolationKind;

    fn report(diags: Vec<Diagnostic>) -> AnalysisReport {
        AnalysisReport {
            diagnostics: diags,
            facts: Facts::default(),
        }
    }

    #[test]
    fn error_queries() {
        let r = report(vec![
            Diagnostic::hint(LintCode::BudgetEstimate, "b"),
            Diagnostic::error(LintCode::ShotsOutOfRange, "s")
                .with_violation(ViolationKind::ShotsOutOfRange),
            Diagnostic::warning(LintCode::DeadDrive, "d"),
        ]);
        assert!(r.has_errors());
        assert_eq!(r.errors().len(), 1);
        assert_eq!(r.warnings().len(), 1);
        let v = r.error_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::ShotsOutOfRange);
        assert_eq!(v[0].message, "s");
    }

    #[test]
    fn render_sorts_errors_first() {
        let r = report(vec![
            Diagnostic::hint(LintCode::BudgetEstimate, "b"),
            Diagnostic::error(LintCode::ShotsOutOfRange, "s"),
        ]);
        let rendered = r.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert!(lines[0].contains("error"), "{lines:?}");
        assert!(lines[1].contains("hint"), "{lines:?}");
    }

    #[test]
    fn report_json_roundtrip() {
        let r = report(vec![
            Diagnostic::warning(LintCode::StaleValidation, "old").with_span("c", 0)
        ]);
        let back: AnalysisReport = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn default_config_is_sane() {
        let c = AnalyzerConfig::default();
        assert!(c.drift_margin_frac > 0.0 && c.drift_margin_frac < 1.0);
        assert!(c.cc_heavy_duty < c.qc_heavy_duty);
    }
}
