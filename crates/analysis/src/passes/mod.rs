//! The standard pass suite.

mod budget;
mod deadcode;
mod drift;
mod hard;
mod pattern;
mod stale;
mod waveform;

pub use budget::BudgetPass;
pub use deadcode::DeadCodePass;
pub use drift::DriftMarginPass;
pub use hard::HardConstraintPass;
pub use pattern::{infer_from_durations, PatternInferencePass};
pub use stale::ValidationFreshnessPass;
pub use waveform::WaveformQualityPass;
