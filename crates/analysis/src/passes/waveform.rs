//! Pass 2: waveform quality.
//!
//! Three checks on the drive shapes themselves, independent of any device
//! spec: amplitude slew rate (HQ0201), instantaneous amplitude jumps at
//! pulse boundaries including turn-on/turn-off (HQ0202), and "dead drive" —
//! detuning or phase programmed under an identically-zero Rabi frequency,
//! which does nothing physical on hardware (HQ0203).

use crate::context::AnalysisContext;
use crate::diagnostic::{Diagnostic, LintCode};
use crate::pass::AnalysisPass;
use hpcqc_program::Waveform;

/// Resolution of the slew-rate sweep, in samples per pulse.
const SLEW_SAMPLES: usize = 256;

pub struct WaveformQualityPass;

impl AnalysisPass for WaveformQualityPass {
    fn name(&self) -> &'static str {
        "waveform-quality"
    }

    fn run(&self, ctx: &mut AnalysisContext) {
        let seq = &ctx.ir.sequence;
        let mut out = Vec::new();

        for (i, tp) in seq.pulses.iter().enumerate() {
            // --- slew rate ---
            let slew = max_slew(&tp.pulse.amplitude);
            if slew > ctx.cfg.max_slew_rate {
                out.push(
                    Diagnostic::warning(
                        LintCode::ExcessiveSlewRate,
                        format!(
                            "amplitude slews at {slew:.1} rad/µs² (limit {:.1}); \
                             hardware low-pass filtering will distort the shape",
                            ctx.cfg.max_slew_rate
                        ),
                    )
                    .with_span(tp.channel.clone(), i),
                );
            }

            // --- dead drive ---
            let amp_zero = tp.pulse.amplitude.max_value().abs() < 1e-12
                && tp.pulse.amplitude.min_value().abs() < 1e-12;
            let det_active = tp.pulse.detuning.max_value().abs() > 1e-9
                || tp.pulse.detuning.min_value().abs() > 1e-9;
            if amp_zero && det_active {
                out.push(
                    Diagnostic::warning(
                        LintCode::DeadDrive,
                        format!(
                            "pulse at t={:.3} µs programs detuning with zero Rabi frequency; \
                             the drive has no physical effect",
                            tp.start
                        ),
                    )
                    .with_span(tp.channel.clone(), i),
                );
            }
        }

        // --- boundary discontinuities, per channel ---
        let threshold = ctx.cfg.discontinuity_threshold;
        let mut channels: Vec<&str> = seq.pulses.iter().map(|tp| tp.channel.as_str()).collect();
        channels.sort_unstable();
        channels.dedup();
        for ch in channels {
            let mut prev: Option<(usize, f64, f64)> = None; // (index, end_time, end_value)
            for (i, tp) in seq.pulses.iter().enumerate() {
                if tp.channel != ch {
                    continue;
                }
                let start_v = tp.pulse.amplitude.sample(0.0);
                let incoming = match prev {
                    // back-to-back with the previous pulse on this channel
                    Some((_, end_t, end_v)) if (tp.start - end_t).abs() < 1e-9 => end_v,
                    // a gap (or sequence start): the drive sits at zero
                    _ => 0.0,
                };
                if (start_v - incoming).abs() > threshold {
                    out.push(
                        Diagnostic::warning(
                            LintCode::AmplitudeDiscontinuity,
                            format!(
                                "amplitude jumps {:.2} → {:.2} rad/µs at t={:.3} µs \
                                 (threshold {threshold:.2})",
                                incoming, start_v, tp.start
                            ),
                        )
                        .with_span(ch.to_string(), i),
                    );
                }
                let end_t = tp.start + tp.pulse.duration();
                prev = Some((i, end_t, tp.pulse.amplitude.sample(tp.pulse.duration())));
            }
            // turn-off: the drive falls to zero after the last pulse
            if let Some((i, end_t, end_v)) = prev {
                if end_v.abs() > threshold {
                    out.push(
                        Diagnostic::warning(
                            LintCode::AmplitudeDiscontinuity,
                            format!(
                                "amplitude cuts from {end_v:.2} rad/µs to 0 at t={end_t:.3} µs \
                                 (threshold {threshold:.2})"
                            ),
                        )
                        .with_span(ch.to_string(), i),
                    );
                }
            }
        }

        for d in out {
            ctx.emit(d);
        }
    }
}

/// Maximum |dΩ/dt| over a uniform sweep of the waveform.
fn max_slew(w: &Waveform) -> f64 {
    match w {
        Waveform::Constant { .. } => 0.0,
        Waveform::Ramp {
            duration,
            start,
            stop,
        } => (stop - start).abs() / duration,
        _ => {
            let d = w.duration();
            let dt = d / SLEW_SAMPLES as f64;
            let mut max = 0.0f64;
            let mut last = w.sample(0.0);
            for k in 1..=SLEW_SAMPLES {
                let v = w.sample(dt * k as f64);
                max = max.max((v - last).abs() / dt);
                last = v;
            }
            max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::analyze;
    use hpcqc_program::{ProgramIr, Pulse, Register, SequenceBuilder};

    fn ir_from(build: impl FnOnce(&mut SequenceBuilder)) -> ProgramIr {
        let reg = Register::linear(3, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        build(&mut b);
        ProgramIr::new(b.build().unwrap(), 100, "test")
    }

    fn codes(ir: &ProgramIr) -> Vec<LintCode> {
        analyze(ir, None)
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn gentle_pulse_is_quiet() {
        let ir = ir_from(|b| {
            b.add_global_pulse(
                Pulse::new(
                    Waveform::composite(vec![
                        Waveform::ramp(0.5, 0.0, 5.0).unwrap(),
                        Waveform::constant(2.0, 5.0).unwrap(),
                        Waveform::ramp(0.5, 5.0, 0.0).unwrap(),
                    ])
                    .unwrap(),
                    Waveform::constant(3.0, -2.0).unwrap(),
                    0.0,
                )
                .unwrap(),
            );
        });
        let c = codes(&ir);
        assert!(!c.contains(&LintCode::ExcessiveSlewRate), "{c:?}");
        assert!(!c.contains(&LintCode::AmplitudeDiscontinuity), "{c:?}");
        assert!(!c.contains(&LintCode::DeadDrive), "{c:?}");
    }

    #[test]
    fn steep_ramp_flags_slew() {
        let ir = ir_from(|b| {
            b.add_global_pulse(
                Pulse::new(
                    Waveform::ramp(0.001, 0.0, 5.0).unwrap(), // 5000 rad/µs²
                    Waveform::constant(0.001, 0.0).unwrap(),
                    0.0,
                )
                .unwrap(),
            );
        });
        assert!(codes(&ir).contains(&LintCode::ExcessiveSlewRate));
    }

    #[test]
    fn hard_turn_on_flags_discontinuity() {
        let ir = ir_from(|b| {
            b.add_global_pulse(Pulse::constant(1.0, 10.0, 0.0, 0.0).unwrap());
        });
        let c = codes(&ir);
        // both the 0→10 turn-on and the 10→0 turn-off jump past the 2π threshold
        let n = c
            .iter()
            .filter(|x| **x == LintCode::AmplitudeDiscontinuity)
            .count();
        assert_eq!(n, 2, "{c:?}");
    }

    #[test]
    fn moderate_turn_on_stays_quiet() {
        let ir = ir_from(|b| {
            b.add_global_pulse(Pulse::constant(1.0, 5.0, 0.0, 0.0).unwrap());
        });
        assert!(!codes(&ir).contains(&LintCode::AmplitudeDiscontinuity));
    }

    #[test]
    fn dead_drive_detected() {
        let ir = ir_from(|b| {
            b.add_global_pulse(Pulse::constant(1.0, 5.0, 0.0, 0.0).unwrap());
            b.add_global_pulse(Pulse::constant(1.0, 0.0, -8.0, 0.0).unwrap());
        });
        let report = analyze(&ir, None);
        let dead: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::DeadDrive)
            .collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].span.as_ref().unwrap().pulse, 1);
    }

    #[test]
    fn delay_is_not_dead_drive() {
        let ir = ir_from(|b| {
            b.add_global_pulse(Pulse::constant(1.0, 5.0, 0.0, 0.0).unwrap());
            b.add_delay("rydberg_global", 1.0);
            b.add_global_pulse(Pulse::constant(1.0, 5.0, 0.0, 0.0).unwrap());
        });
        assert!(!codes(&ir).contains(&LintCode::DeadDrive));
    }

    #[test]
    fn mid_sequence_jump_detected_once() {
        let ir = ir_from(|b| {
            // 5 → 5 boundary is continuous; 5 → 12 would jump by 7 > 2π
            b.add_global_pulse(Pulse::constant(1.0, 5.0, 0.0, 0.0).unwrap());
            b.add_global_pulse(Pulse::constant(1.0, 12.0, 0.0, 0.0).unwrap());
        });
        let report = analyze(&ir, None);
        let jumps: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::AmplitudeDiscontinuity)
            .collect();
        // 5→12 at the boundary and 12→0 at turn-off
        assert_eq!(jumps.len(), 2, "{}", report.render());
        assert_eq!(jumps[0].span.as_ref().unwrap().pulse, 1);
    }
}
