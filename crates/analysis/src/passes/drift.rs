//! Pass 3: drift-margin warnings.
//!
//! A program that validates *today* can fail *tomorrow*: calibration drift
//! moves the spec limits between validation and execution (paper §2.1, and
//! the OU drift model in `telemetry::drift`). This pass warns when a program
//! parks within `drift_margin_frac` of a limit — valid now, but with no
//! headroom for the next recalibration.

use crate::context::AnalysisContext;
use crate::diagnostic::{Diagnostic, LintCode};
use crate::pass::AnalysisPass;

pub struct DriftMarginPass;

impl AnalysisPass for DriftMarginPass {
    fn name(&self) -> &'static str {
        "drift-margins"
    }

    fn run(&self, ctx: &mut AnalysisContext) {
        let Some(spec) = ctx.spec else { return };
        let margin = ctx.cfg.drift_margin_frac;
        let seq = &ctx.ir.sequence;
        let mut out = Vec::new();

        let near = |value: f64, limit: f64| -> bool {
            limit > 0.0 && value <= limit + 1e-9 && value >= limit * (1.0 - margin)
        };

        for (i, tp) in seq.pulses.iter().enumerate() {
            let Some(ch) = spec.channel(&tp.channel) else {
                continue;
            };
            let omax = tp.pulse.amplitude.max_value();
            if near(omax, ch.max_amplitude) {
                out.push(
                    Diagnostic::warning(
                        LintCode::AmplitudeNearLimit,
                        format!(
                            "peak Ω={omax:.3} rad/µs is within {:.0}% of the channel limit \
                             {:.3}; a recalibration could invalidate this program",
                            margin * 100.0,
                            ch.max_amplitude
                        ),
                    )
                    .with_span(tp.channel.clone(), i),
                );
            }
            let dmax = tp.pulse.detuning.max_value();
            let dmin = tp.pulse.detuning.min_value();
            if near(dmax, ch.max_detuning) || near(-dmin, -ch.min_detuning) {
                out.push(
                    Diagnostic::warning(
                        LintCode::DetuningNearLimit,
                        format!(
                            "detuning spans [{dmin:.3}, {dmax:.3}] rad/µs, within {:.0}% of \
                             the calibrated range [{:.3}, {:.3}]",
                            margin * 100.0,
                            ch.min_detuning,
                            ch.max_detuning
                        ),
                    )
                    .with_span(tp.channel.clone(), i),
                );
            }
        }

        let dur = seq.duration();
        if near(dur, spec.max_duration) {
            out.push(Diagnostic::warning(
                LintCode::DurationNearLimit,
                format!(
                    "sequence lasts {dur:.3} µs, within {:.0}% of the device maximum {:.3} µs",
                    margin * 100.0,
                    spec.max_duration
                ),
            ));
        }

        for d in out {
            ctx.emit(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::analyze;
    use hpcqc_program::{DeviceSpec, ProgramIr, Pulse, Register, SequenceBuilder};

    fn ir_with(amp: f64, delta: f64, duration: f64) -> ProgramIr {
        let reg = Register::linear(3, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(duration, amp, delta, 0.0).unwrap());
        ProgramIr::new(b.build().unwrap(), 100, "test")
    }

    fn codes(ir: &ProgramIr) -> Vec<LintCode> {
        let spec = DeviceSpec::analog_production();
        analyze(ir, Some(&spec))
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn amplitude_near_limit_warns() {
        // production limit 12.57, 90% = 11.31
        let c = codes(&ir_with(12.0, 0.0, 1.0));
        assert!(c.contains(&LintCode::AmplitudeNearLimit), "{c:?}");
        assert!(
            !c.contains(&LintCode::AmplitudeOutOfRange),
            "still valid: {c:?}"
        );
    }

    #[test]
    fn comfortable_margins_stay_quiet() {
        let c = codes(&ir_with(5.0, -10.0, 1.0));
        assert!(!c.contains(&LintCode::AmplitudeNearLimit), "{c:?}");
        assert!(!c.contains(&LintCode::DetuningNearLimit), "{c:?}");
        assert!(!c.contains(&LintCode::DurationNearLimit), "{c:?}");
    }

    #[test]
    fn negative_detuning_near_floor_warns() {
        // production floor -38.0, margin edge -34.2
        let c = codes(&ir_with(5.0, -36.0, 1.0));
        assert!(c.contains(&LintCode::DetuningNearLimit), "{c:?}");
    }

    #[test]
    fn duration_near_limit_warns() {
        // production max 6.0 µs, margin edge 5.4
        let c = codes(&ir_with(5.0, 0.0, 5.7));
        assert!(c.contains(&LintCode::DurationNearLimit), "{c:?}");
    }

    #[test]
    fn over_limit_is_error_not_margin_warning() {
        let spec = DeviceSpec::analog_production();
        let report = analyze(&ir_with(99.0, 0.0, 1.0), Some(&spec));
        assert!(report.has_errors());
        assert!(!report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::AmplitudeNearLimit));
    }
}
