//! Pass 4: dead code.
//!
//! Finds program mass that costs queue time and QPU budget without affecting
//! the measurement: registers that are never driven (HQ0401), channels whose
//! every pulse is a zero-drive placeholder (HQ0402), and zero-drive tail time
//! after the last real pulse — the atoms just decohere while the clock runs
//! (HQ0403).

use crate::context::AnalysisContext;
use crate::diagnostic::{Diagnostic, LintCode};
use crate::pass::AnalysisPass;
use hpcqc_program::sequence::TimedPulse;

/// A pulse that drives nothing: amplitude and detuning identically zero.
fn is_zero_drive(tp: &TimedPulse) -> bool {
    tp.pulse.amplitude.max_value().abs() < 1e-12
        && tp.pulse.amplitude.min_value().abs() < 1e-12
        && tp.pulse.detuning.max_value().abs() < 1e-12
        && tp.pulse.detuning.min_value().abs() < 1e-12
}

pub struct DeadCodePass;

impl AnalysisPass for DeadCodePass {
    fn name(&self) -> &'static str {
        "dead-code"
    }

    fn run(&self, ctx: &mut AnalysisContext) {
        let seq = &ctx.ir.sequence;
        let mut out = Vec::new();

        // --- atoms never addressed ---
        if seq.pulses.iter().all(is_zero_drive) {
            out.push(Diagnostic::warning(
                LintCode::NoAtomsAddressed,
                format!(
                    "{} atoms are trapped but no pulse ever drives them; \
                     every shot measures the initial state",
                    seq.num_qubits()
                ),
            ));
        } else {
            // --- channels that only carry zero pulses ---
            let mut channels: Vec<&str> = seq.pulses.iter().map(|tp| tp.channel.as_str()).collect();
            channels.sort_unstable();
            channels.dedup();
            for ch in channels {
                let (mut first_idx, mut any_real) = (None, false);
                for (i, tp) in seq.pulses.iter().enumerate() {
                    if tp.channel != ch {
                        continue;
                    }
                    first_idx.get_or_insert(i);
                    if !is_zero_drive(tp) {
                        any_real = true;
                        break;
                    }
                }
                if !any_real {
                    out.push(
                        Diagnostic::warning(
                            LintCode::UnusedChannel,
                            format!("channel {ch:?} carries only zero-drive pulses"),
                        )
                        .with_span(ch.to_string(), first_idx.unwrap_or(0)),
                    );
                }
            }

            // --- trailing dead time after the last real drive ---
            let last_drive_end = seq
                .pulses
                .iter()
                .filter(|tp| !is_zero_drive(tp))
                .map(|tp| tp.start + tp.pulse.duration())
                .fold(0.0f64, f64::max);
            let tail = seq.duration() - last_drive_end;
            if tail > 1e-9 {
                let first_trailing = seq
                    .pulses
                    .iter()
                    .enumerate()
                    .find(|(_, tp)| is_zero_drive(tp) && tp.start >= last_drive_end - 1e-9);
                let mut d = Diagnostic::hint(
                    LintCode::TrailingDeadTime,
                    format!(
                        "{tail:.3} µs of zero drive after the last real pulse; \
                         the atoms only decohere until measurement"
                    ),
                );
                if let Some((i, tp)) = first_trailing {
                    d = d.with_span(tp.channel.clone(), i);
                }
                out.push(d);
            }
        }

        for d in out {
            ctx.emit(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::analyze;
    use hpcqc_program::{ProgramIr, Pulse, Register, SequenceBuilder};

    fn ir_from(build: impl FnOnce(&mut SequenceBuilder)) -> ProgramIr {
        let reg = Register::linear(3, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        build(&mut b);
        ProgramIr::new(b.build().unwrap(), 100, "test")
    }

    fn codes(ir: &ProgramIr) -> Vec<LintCode> {
        analyze(ir, None)
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn driven_program_is_quiet() {
        let ir = ir_from(|b| {
            b.add_global_pulse(Pulse::constant(1.0, 5.0, -2.0, 0.0).unwrap());
        });
        let c = codes(&ir);
        assert!(!c.contains(&LintCode::NoAtomsAddressed), "{c:?}");
        assert!(!c.contains(&LintCode::UnusedChannel), "{c:?}");
        assert!(!c.contains(&LintCode::TrailingDeadTime), "{c:?}");
    }

    #[test]
    fn all_zero_schedule_flags_no_atoms() {
        let ir = ir_from(|b| {
            b.add_delay("rydberg_global", 2.0);
        });
        let c = codes(&ir);
        assert!(c.contains(&LintCode::NoAtomsAddressed), "{c:?}");
        // subsumed: no per-channel or trailing findings on a fully dead program
        assert!(!c.contains(&LintCode::UnusedChannel), "{c:?}");
    }

    #[test]
    fn zero_only_channel_flagged() {
        let ir = ir_from(|b| {
            b.add_global_pulse(Pulse::constant(1.0, 5.0, 0.0, 0.0).unwrap());
            b.add_delay("aux_channel", 1.0);
        });
        let report = analyze(&ir, None);
        let unused: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::UnusedChannel)
            .collect();
        assert_eq!(unused.len(), 1, "{}", report.render());
        assert_eq!(unused[0].span.as_ref().unwrap().channel, "aux_channel");
    }

    #[test]
    fn trailing_delay_flagged_mid_delay_not() {
        let ir = ir_from(|b| {
            b.add_global_pulse(Pulse::constant(1.0, 5.0, 0.0, 0.0).unwrap());
            b.add_delay("rydberg_global", 0.5);
            b.add_global_pulse(Pulse::constant(1.0, 5.0, 0.0, 0.0).unwrap());
        });
        assert!(!codes(&ir).contains(&LintCode::TrailingDeadTime));

        let ir = ir_from(|b| {
            b.add_global_pulse(Pulse::constant(1.0, 5.0, 0.0, 0.0).unwrap());
            b.add_delay("rydberg_global", 1.5);
        });
        let report = analyze(&ir, None);
        let tails: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::TrailingDeadTime)
            .collect();
        assert_eq!(tails.len(), 1, "{}", report.render());
        assert!(tails[0].message.contains("1.500"));
        assert_eq!(tails[0].span.as_ref().unwrap().pulse, 1);
    }
}
