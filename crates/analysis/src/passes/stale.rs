//! Pass 7: validation freshness.
//!
//! `ProgramIr::validated_against_revision` records which device-spec revision
//! the client validated against; until this pass it was written but never
//! read. Comparing it to the current spec's revision detects the paper's
//! §2.1 hazard: a program validated before a recalibration may no longer fit
//! the device. HQ0701 (stale) asks for re-validation; HQ0702 (never
//! validated) nudges clients to pre-validate at all.

use crate::context::AnalysisContext;
use crate::diagnostic::{Diagnostic, LintCode};
use crate::pass::AnalysisPass;

pub struct ValidationFreshnessPass;

impl AnalysisPass for ValidationFreshnessPass {
    fn name(&self) -> &'static str {
        "validation-freshness"
    }

    fn run(&self, ctx: &mut AnalysisContext) {
        let Some(spec) = ctx.spec else { return };
        match ctx.ir.validated_against_revision {
            Some(rev) if rev != spec.revision => {
                ctx.emit(Diagnostic::warning(
                    LintCode::StaleValidation,
                    format!(
                        "program was validated against spec revision {rev}, but {} is now at \
                         revision {}; calibration may have drifted — re-validate",
                        spec.name, spec.revision
                    ),
                ));
            }
            Some(_) => {}
            None => {
                ctx.emit(Diagnostic::hint(
                    LintCode::NeverValidated,
                    "program carries no validation revision; client-side pre-validation \
                     against the live spec is recommended"
                        .to_string(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::analyze;
    use hpcqc_program::{DeviceSpec, ProgramIr, Pulse, Register, SequenceBuilder};

    fn ir() -> ProgramIr {
        let reg = Register::linear(3, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(1.0, 5.0, 0.0, 0.0).unwrap());
        ProgramIr::new(b.build().unwrap(), 100, "test")
    }

    fn codes(ir: &ProgramIr, spec: &DeviceSpec) -> Vec<LintCode> {
        analyze(ir, Some(spec))
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn matching_revision_is_quiet() {
        let spec = DeviceSpec::analog_production();
        let c = codes(&ir().with_validation_revision(spec.revision), &spec);
        assert!(!c.contains(&LintCode::StaleValidation), "{c:?}");
        assert!(!c.contains(&LintCode::NeverValidated), "{c:?}");
    }

    #[test]
    fn stale_revision_warns() {
        let mut spec = DeviceSpec::analog_production();
        spec.revision = 5;
        let c = codes(&ir().with_validation_revision(3), &spec);
        assert!(c.contains(&LintCode::StaleValidation), "{c:?}");
    }

    #[test]
    fn never_validated_hints() {
        let spec = DeviceSpec::analog_production();
        let c = codes(&ir(), &spec);
        assert!(c.contains(&LintCode::NeverValidated), "{c:?}");
    }
}
