//! Pass 5: shot/duration budget estimation.
//!
//! Computes the expected QPU cost of the submission — drive seconds
//! (shots × sequence duration) and wall-clock seconds at the device's
//! calibrated shot rate — and records both in the facts for the scheduler
//! and the pattern-inference pass. Emits the estimate as a Hint (HQ0501)
//! and a Warning when the wall-clock exceeds the configured budget (HQ0502).

use crate::context::AnalysisContext;
use crate::diagnostic::{Diagnostic, LintCode};
use crate::pass::AnalysisPass;

pub struct BudgetPass;

impl AnalysisPass for BudgetPass {
    fn name(&self) -> &'static str {
        "budget"
    }

    fn run(&self, ctx: &mut AnalysisContext) {
        let shots = ctx.ir.shots as f64;
        let duration_secs = ctx.ir.sequence.duration() * 1e-6;
        let drive_secs = shots * duration_secs;
        // Shot overhead (register loading, imaging) dominates on hardware:
        // the spec's shot rate captures it. Without a spec, only the drive
        // time is knowable.
        let wallclock = match ctx.spec {
            Some(spec) => spec.shots_wallclock_secs(ctx.ir.shots).max(drive_secs),
            None => drive_secs,
        };
        ctx.facts.est_qpu_secs = drive_secs;
        ctx.facts.est_wallclock_secs = wallclock;

        ctx.emit(Diagnostic::hint(
            LintCode::BudgetEstimate,
            format!(
                "{} shots × {:.3} µs ≈ {:.3} s of drive time, ≈ {:.0} s wall-clock",
                ctx.ir.shots,
                ctx.ir.sequence.duration(),
                drive_secs,
                wallclock
            ),
        ));

        if wallclock > ctx.cfg.max_wallclock_secs {
            ctx.emit(Diagnostic::warning(
                LintCode::ExcessiveWallclock,
                format!(
                    "estimated wall-clock {:.0} s exceeds the {:.0} s budget; \
                     consider splitting the submission",
                    wallclock, ctx.cfg.max_wallclock_secs
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::analyze;
    use hpcqc_program::{DeviceSpec, ProgramIr, Pulse, Register, SequenceBuilder};

    fn ir(shots: u32) -> ProgramIr {
        let reg = Register::linear(3, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(2.0, 5.0, 0.0, 0.0).unwrap());
        ProgramIr::new(b.build().unwrap(), shots, "test")
    }

    #[test]
    fn facts_computed_with_spec_shot_rate() {
        let spec = DeviceSpec::analog_production(); // 1 Hz
        let report = analyze(&ir(500), Some(&spec));
        assert!((report.facts.est_qpu_secs - 500.0 * 2.0e-6).abs() < 1e-12);
        assert!(
            (report.facts.est_wallclock_secs - 500.0).abs() < 1e-9,
            "1 Hz → 500 s"
        );
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::BudgetEstimate));
    }

    #[test]
    fn emulator_wallclock_is_drive_time() {
        let spec = DeviceSpec::emulator("emu-sv", 20);
        let report = analyze(&ir(500), Some(&spec));
        assert!((report.facts.est_wallclock_secs - report.facts.est_qpu_secs).abs() < 1e-12);
    }

    #[test]
    fn excessive_wallclock_warns() {
        let mut spec = DeviceSpec::analog_production();
        spec.max_shots = 1_000_000; // isolate the budget warning from HQ0108
        let report = analyze(&ir(5000), Some(&spec)); // 5000 s > 3600 s budget
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::ExcessiveWallclock));
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn modest_budget_stays_quiet() {
        let spec = DeviceSpec::analog_production();
        let report = analyze(&ir(500), Some(&spec));
        assert!(!report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::ExcessiveWallclock));
    }
}
