//! Pass 6: static pattern inference.
//!
//! The Table-1 taxonomy hint steering the pattern-aware interleaver is
//! user-asserted today. This pass derives it instead: the budget pass
//! estimated the QPU wall-clock, the IR's `classical_secs_estimate` declares
//! the classical phases, and the duty ratio between them picks the pattern
//! (A ≥ `qc_heavy_duty`, B ≤ `cc_heavy_duty`, C otherwise — matching the
//! nominal duties of `workloads::patterns`). The daemon cross-checks the
//! user hint against the inference and counts mismatches.

use crate::context::{AnalysisContext, AnalyzerConfig};
use crate::diagnostic::{Diagnostic, LintCode};
use crate::pass::AnalysisPass;
use hpcqc_scheduler::PatternHint;

/// Classify a workload by its QPU duty ratio. Exposed so callers holding
/// measured durations (e.g. `workloads::HybridJob`) can reuse the heuristic
/// without building an IR.
pub fn infer_from_durations(
    qpu_secs: f64,
    classical_secs: f64,
    cfg: &AnalyzerConfig,
) -> PatternHint {
    let total = qpu_secs + classical_secs;
    if total <= 0.0 {
        return PatternHint::QcBalanced;
    }
    let duty = qpu_secs / total;
    if duty >= cfg.qc_heavy_duty {
        PatternHint::QcHeavy
    } else if duty <= cfg.cc_heavy_duty {
        PatternHint::CcHeavy
    } else {
        PatternHint::QcBalanced
    }
}

pub struct PatternInferencePass;

impl AnalysisPass for PatternInferencePass {
    fn name(&self) -> &'static str {
        "pattern-inference"
    }

    fn run(&self, ctx: &mut AnalysisContext) {
        let qpu = ctx.facts.est_wallclock_secs;
        match ctx.ir.classical_secs_estimate {
            None => {
                ctx.emit(Diagnostic::hint(
                    LintCode::UnknownPattern,
                    "no classical-phase estimate declared; workload pattern cannot be \
                     inferred — the scheduler falls back to the user hint"
                        .to_string(),
                ));
            }
            Some(classical) => {
                let hint = infer_from_durations(qpu, classical, ctx.cfg);
                let duty = qpu / (qpu + classical).max(1e-12);
                ctx.facts.classical_secs = Some(classical);
                ctx.facts.qpu_duty = Some(duty);
                ctx.facts.inferred_hint = Some(hint);
                ctx.emit(Diagnostic::hint(
                    LintCode::InferredPattern,
                    format!(
                        "inferred pattern {} (QPU ≈ {qpu:.1} s, classical ≈ {classical:.1} s, \
                         duty {duty:.2})",
                        hint.as_str()
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::analyze;
    use hpcqc_program::{DeviceSpec, ProgramIr, Pulse, Register, SequenceBuilder};

    fn ir(shots: u32, classical: Option<f64>) -> ProgramIr {
        let reg = Register::linear(3, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(2.0, 5.0, 0.0, 0.0).unwrap());
        let ir = ProgramIr::new(b.build().unwrap(), shots, "test");
        match classical {
            Some(c) => ir.with_classical_estimate(c),
            None => ir,
        }
    }

    #[test]
    fn duty_thresholds() {
        let cfg = AnalyzerConfig::default();
        assert_eq!(infer_from_durations(90.0, 10.0, &cfg), PatternHint::QcHeavy);
        assert_eq!(infer_from_durations(10.0, 90.0, &cfg), PatternHint::CcHeavy);
        assert_eq!(
            infer_from_durations(50.0, 50.0, &cfg),
            PatternHint::QcBalanced
        );
        assert_eq!(
            infer_from_durations(0.0, 0.0, &cfg),
            PatternHint::QcBalanced
        );
    }

    #[test]
    fn qc_heavy_inferred_from_ir() {
        // 500 shots at 1 Hz ≈ 500 s QPU vs 10 s classical → duty ≈ 0.98
        let spec = DeviceSpec::analog_production();
        let report = analyze(&ir(500, Some(10.0)), Some(&spec));
        assert_eq!(report.facts.inferred_hint, Some(PatternHint::QcHeavy));
        assert!(report.facts.qpu_duty.unwrap() > 0.9);
    }

    #[test]
    fn cc_heavy_inferred_from_ir() {
        // 500 s QPU vs 10000 s classical → duty ≈ 0.05
        let spec = DeviceSpec::analog_production();
        let report = analyze(&ir(500, Some(10_000.0)), Some(&spec));
        assert_eq!(report.facts.inferred_hint, Some(PatternHint::CcHeavy));
    }

    #[test]
    fn no_estimate_yields_unknown_pattern_hint() {
        let spec = DeviceSpec::analog_production();
        let report = analyze(&ir(500, None), Some(&spec));
        assert_eq!(report.facts.inferred_hint, None);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::UnknownPattern));
    }

    #[test]
    fn inference_message_names_the_pattern() {
        let spec = DeviceSpec::analog_production();
        let report = analyze(&ir(500, Some(500.0)), Some(&spec));
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::InferredPattern)
            .unwrap();
        assert!(d.message.contains("qc-balanced"), "{}", d.message);
    }
}
