//! Pass 1: hard-constraint parity with `program::validate`.
//!
//! The analyzer must never disagree with the validator about what the device
//! will reject, so this pass *delegates* to `validate`/`validate_shots`
//! rather than reimplementing the checks, then lifts every [`Violation`]
//! into an Error-level diagnostic carrying the original kind and message.
//! The parity invariant (every `ViolationKind` ↔ an `HQ01xx` Error lint) is
//! enforced at compile time by `LintCode::for_violation` and at run time by
//! the property tests.

use crate::context::AnalysisContext;
use crate::diagnostic::{Diagnostic, LintCode};
use crate::pass::AnalysisPass;
use hpcqc_program::validate::validate_shots;
use hpcqc_program::{validate, DeviceSpec, Sequence, ViolationKind};

pub struct HardConstraintPass;

impl AnalysisPass for HardConstraintPass {
    fn name(&self) -> &'static str {
        "hard-constraints"
    }

    fn run(&self, ctx: &mut AnalysisContext) {
        let Some(spec) = ctx.spec else { return };
        let mut out = Vec::new();
        for v in validate(&ctx.ir.sequence, spec) {
            let mut d = Diagnostic::error(LintCode::for_violation(&v.kind), v.message)
                .with_violation(v.kind.clone());
            if let Some((ch, idx)) = span_for(&v.kind, &ctx.ir.sequence, spec) {
                d = d.with_span(ch, idx);
            }
            out.push(d);
        }
        if let Some(v) = validate_shots(ctx.ir.shots, spec) {
            out.push(
                Diagnostic::error(LintCode::ShotsOutOfRange, v.message)
                    .with_violation(ViolationKind::ShotsOutOfRange),
            );
        }
        for d in out {
            ctx.emit(d);
        }
    }
}

/// Best-effort span: the first pulse exhibiting the violated condition.
/// Advisory only — the authoritative finding is the violation message.
fn span_for(kind: &ViolationKind, seq: &Sequence, spec: &DeviceSpec) -> Option<(String, usize)> {
    let first = |pred: &dyn Fn(usize) -> bool| {
        seq.pulses
            .iter()
            .enumerate()
            .find(|(i, _)| pred(*i))
            .map(|(i, tp)| (tp.channel.clone(), i))
    };
    match kind {
        ViolationKind::UnknownChannel => first(&|i| spec.channel(&seq.pulses[i].channel).is_none()),
        ViolationKind::AmplitudeOutOfRange => first(&|i| {
            let tp = &seq.pulses[i];
            spec.channel(&tp.channel).is_some_and(|ch| {
                tp.pulse.amplitude.max_value() > ch.max_amplitude + 1e-9
                    || tp.pulse.amplitude.min_value() < -1e-9
            })
        }),
        ViolationKind::DetuningOutOfRange => first(&|i| {
            let tp = &seq.pulses[i];
            spec.channel(&tp.channel).is_some_and(|ch| {
                tp.pulse.detuning.max_value() > ch.max_detuning + 1e-9
                    || tp.pulse.detuning.min_value() < ch.min_detuning - 1e-9
            })
        }),
        ViolationKind::SequenceTooLong => {
            // the pulse whose end pushes past the limit
            first(&|i| {
                let tp = &seq.pulses[i];
                tp.start + tp.pulse.duration() > spec.max_duration + 1e-9
            })
        }
        // register- and shot-level violations have no pulse to point at
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::analyze;
    use hpcqc_program::{ProgramIr, Pulse, Register, SequenceBuilder};

    fn ir_with(amp: f64, shots: u32) -> ProgramIr {
        let reg = Register::linear(3, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(1.0, amp, 0.0, 0.0).unwrap());
        ProgramIr::new(b.build().unwrap(), shots, "test")
    }

    #[test]
    fn amplitude_violation_becomes_error_with_span() {
        let spec = DeviceSpec::analog_production();
        let report = analyze(&ir_with(99.0, 100), Some(&spec));
        let errs = report.errors();
        assert_eq!(errs.len(), 1, "{}", report.render());
        assert_eq!(errs[0].code, LintCode::AmplitudeOutOfRange);
        assert_eq!(errs[0].violation, Some(ViolationKind::AmplitudeOutOfRange));
        let span = errs[0].span.as_ref().expect("span attached");
        assert_eq!(span.pulse, 0);
    }

    #[test]
    fn shots_violation_becomes_error() {
        let spec = DeviceSpec::analog_production();
        let report = analyze(&ir_with(5.0, 1_000_000), Some(&spec));
        assert!(report
            .errors()
            .iter()
            .any(|d| d.code == LintCode::ShotsOutOfRange));
    }

    #[test]
    fn no_spec_means_no_hard_errors() {
        let report = analyze(&ir_with(99.0, 1_000_000), None);
        assert!(!report.has_errors());
    }

    #[test]
    fn error_count_matches_validator() {
        let spec = DeviceSpec::analog_production();
        // 2 µm spacing (too close) + amp 99 (out of range) + shots 0
        let reg = Register::linear(3, 2.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(1.0, 99.0, 0.0, 0.0).unwrap());
        let ir = ProgramIr::new(b.build().unwrap(), 0, "test");
        let expected =
            validate(&ir.sequence, &spec).len() + validate_shots(ir.shots, &spec).iter().count();
        let report = analyze(&ir, Some(&spec));
        assert_eq!(report.errors().len(), expected, "{}", report.render());
    }
}
