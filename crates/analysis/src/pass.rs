//! The pass registry.
//!
//! An [`Analyzer`] owns an ordered list of boxed [`AnalysisPass`]es and runs
//! them over a fresh [`AnalysisContext`] per program. Passes communicate
//! through `ctx.facts` (e.g. the budget pass computes duty-cycle inputs the
//! pattern-inference pass consumes), so registration order matters; the
//! [`Analyzer::standard`] order is the supported one.

use crate::context::{AnalysisContext, AnalysisReport, AnalyzerConfig};
use crate::passes;
use hpcqc_program::{DeviceSpec, ProgramIr};

/// One analysis pass. Passes must be pure over the context: no I/O, no
/// global state — the same program and spec always produce the same
/// diagnostics (CI relies on this).
pub trait AnalysisPass {
    /// Stable pass name (used in docs and debug output).
    fn name(&self) -> &'static str;
    /// Inspect the context and emit diagnostics / record facts.
    fn run(&self, ctx: &mut AnalysisContext);
}

/// A configured pipeline of passes.
pub struct Analyzer {
    cfg: AnalyzerConfig,
    passes: Vec<Box<dyn AnalysisPass + Send + Sync>>,
}

impl Analyzer {
    /// An empty analyzer with custom thresholds; add passes with
    /// [`Analyzer::register`].
    pub fn new(cfg: AnalyzerConfig) -> Self {
        Analyzer {
            cfg,
            passes: Vec::new(),
        }
    }

    /// The standard seven-pass pipeline with default thresholds.
    pub fn standard() -> Self {
        Analyzer::standard_with(AnalyzerConfig::default())
    }

    /// The standard pipeline with custom thresholds.
    pub fn standard_with(cfg: AnalyzerConfig) -> Self {
        let mut a = Analyzer::new(cfg);
        a.register(Box::new(passes::HardConstraintPass));
        a.register(Box::new(passes::WaveformQualityPass));
        a.register(Box::new(passes::DriftMarginPass));
        a.register(Box::new(passes::DeadCodePass));
        a.register(Box::new(passes::BudgetPass));
        a.register(Box::new(passes::PatternInferencePass));
        a.register(Box::new(passes::ValidationFreshnessPass));
        a
    }

    /// Append a pass to the pipeline.
    pub fn register(&mut self, pass: Box<dyn AnalysisPass + Send + Sync>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Names of the registered passes, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// The analyzer's threshold configuration.
    pub fn config(&self) -> &AnalyzerConfig {
        &self.cfg
    }

    /// Run every pass over `ir` (against `spec` when provided; spec-dependent
    /// passes no-op without one) and collect the report.
    pub fn analyze(&self, ir: &ProgramIr, spec: Option<&DeviceSpec>) -> AnalysisReport {
        let mut ctx = AnalysisContext::new(ir, spec, &self.cfg);
        for pass in &self.passes {
            pass.run(&mut ctx);
        }
        ctx.finish()
    }
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer::standard()
    }
}

/// Run the standard pipeline once — the common entry point.
pub fn analyze(ir: &ProgramIr, spec: Option<&DeviceSpec>) -> AnalysisReport {
    Analyzer::standard().analyze(ir, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcqc_program::{Pulse, Register, SequenceBuilder};

    fn clean_ir() -> ProgramIr {
        let reg = Register::linear(4, 6.0).unwrap();
        let mut b = SequenceBuilder::new(reg);
        b.add_global_pulse(Pulse::constant(1.0, 5.0, -2.0, 0.0).unwrap());
        ProgramIr::new(b.build().unwrap(), 500, "analog-sdk")
    }

    #[test]
    fn standard_pipeline_has_seven_passes() {
        let a = Analyzer::standard();
        assert_eq!(a.pass_names().len(), 7);
        assert_eq!(a.pass_names()[0], "hard-constraints");
    }

    #[test]
    fn clean_program_no_errors_with_production_spec() {
        let spec = hpcqc_program::DeviceSpec::analog_production();
        let report = analyze(&clean_ir(), Some(&spec));
        assert!(!report.has_errors(), "unexpected: {}", report.render());
    }

    #[test]
    fn analysis_without_spec_still_runs_spec_free_passes() {
        let report = analyze(&clean_ir(), None);
        // budget facts are always derived
        assert!(report.facts.est_qpu_secs > 0.0);
        assert!(!report.has_errors());
    }

    #[test]
    fn analysis_is_deterministic() {
        let spec = hpcqc_program::DeviceSpec::analog_production();
        let ir = clean_ir();
        let a = analyze(&ir, Some(&spec));
        let b = analyze(&ir, Some(&spec));
        assert_eq!(a, b);
    }
}
